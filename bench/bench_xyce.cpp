// Section V-F reproduction: a transient-analysis sequence of matrices with
// a fixed pattern and changing values (the Xyce1 circuit). One symbolic
// analysis is reused across the whole sequence; every step is a numeric
// refactorization + solve. Paper: 1000 matrices, Basker 175.21 s vs KLU
// 914.77 s vs PMKL 951.34 s (5.43x / 5.22x). We run a scaled-down sequence
// (BASKER_XYCE_STEPS, default 200) on the Xyce1 structural analogue and
// compare total refactorization times — measured serial work for KLU/PMKL,
// schedule model at 8 threads for Basker's parallel speedup component.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "basker/bench_support/model.hpp"
#include "basker/bench_support/report.hpp"
#include "basker/common/prng.hpp"
#include "basker/core/basker.hpp"
#include "basker/gen/generators.hpp"
#include "basker/gen/suite.hpp"
#include "basker/klu/klu.hpp"
#include "basker/sn/sn.hpp"
#include "basker/sparse/ops.hpp"

namespace bb = basker::bench;
using basker::Csc;
using basker::Int;
using basker::Scalar;
using basker::Status;

namespace {

Int num_steps(Int fallback) {
  const char* env = std::getenv("BASKER_XYCE_STEPS");
  if (env == nullptr) return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

// --json: the amortized time-per-step sweep bench_compare.py --refactor
// gates. One p = 1 static-schedule solver runs the same fixed-pattern value
// sequence twice — full re-pivoting numeric() per step, then values-only
// refactor() per step — and reports both totals. The sequence is generated
// on the fly from a fixed seed (revalue() is a deterministic walk from the
// base matrix), so a 1000-step sweep never holds 1000 matrices; per-step
// stats keep generation out of the timings.
int run_json() {
  const double scale = basker::gen::bench_scale();
  const Int steps = num_steps(1000);
  Csc a = basker::gen::make_by_name("Xyce1", scale);

  basker::BaskerOptions opt;
  opt.nthreads = 1;
  basker::Basker solver(opt);
  if (solver.factor(a) != Status::kOk) {
    std::fprintf(stderr, "bench_xyce --json: factor failed\n");
    return 1;
  }

  double numeric_total = 0.0;
  {
    basker::Prng rng(2024);
    Csc step = a;
    for (Int s = 0; s < steps; ++s) {
      basker::gen::revalue(step, rng, 0.3);
      if (solver.numeric(step) != Status::kOk) {
        std::fprintf(stderr, "bench_xyce --json: numeric failed at step %d\n",
                     static_cast<int>(s));
        return 1;
      }
      numeric_total += solver.stats().factor_seconds;
    }
  }

  Csc last = a;
  {
    // Same seed, same walk: the refactor leg sees the identical sequence.
    basker::Prng rng(2024);
    Csc step = a;
    for (Int s = 0; s < steps; ++s) {
      basker::gen::revalue(step, rng, 0.3);
      const Status st = solver.refactor(step);
      if (st != Status::kOk && st != Status::kPivotGrowth) {
        std::fprintf(stderr, "bench_xyce --json: refactor failed at step %d\n",
                     static_cast<int>(s));
        return 1;
      }
    }
    last = step;
  }
  const double refactor_total = solver.stats().refactor_seconds;

  const std::vector<Scalar> rhs = basker::gen::random_rhs(a.ncols, 12345);
  std::vector<Scalar> x = rhs;
  if (solver.solve(x) != Status::kOk) {
    std::fprintf(stderr, "bench_xyce --json: solve failed\n");
    return 1;
  }
  const double residual = basker::relative_residual(last, x, rhs);

  bb::JsonValue doc = bb::JsonValue::object();
  doc.set("benchmark", std::string("xyce_refactor"));
  doc.set("matrix", std::string("Xyce1"));
  doc.set("n", a.ncols);
  doc.set("nnz", a.nnz());
  doc.set("steps", steps);
  doc.set("threads", solver.nthreads());
  doc.set("numeric_seconds_total", numeric_total);
  doc.set("refactor_seconds_total", refactor_total);
  doc.set("numeric_step_seconds", numeric_total / static_cast<double>(steps));
  doc.set("refactor_step_seconds", refactor_total / static_cast<double>(steps));
  doc.set("refactors", static_cast<double>(solver.stats().refactors));
  doc.set("refactor_fallbacks",
          static_cast<double>(solver.stats().refactor_fallbacks));
  doc.set("residual", residual);
  std::printf("%s\n", doc.dump(2).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return run_json();
  }
  const double scale = basker::gen::bench_scale();
  const Int steps = num_steps(200);
  std::printf("== Xyce transient sequence (Xyce1 analogue, %d steps) ==\n\n",
              static_cast<int>(steps));

  Csc a = basker::gen::make_by_name("Xyce1", scale);

  // Pre-generate the value sequence so generation cost stays out of the
  // timed loops and all solvers see identical matrices.
  std::vector<Csc> sequence;
  sequence.reserve(static_cast<size_t>(steps));
  {
    basker::Prng rng(2024);
    Csc step = a;
    for (Int s = 0; s < steps; ++s) {
      basker::gen::revalue(step, rng, 0.3);
      sequence.push_back(step);
    }
  }

  double klu_total = 0.0, pmkl_total = 0.0;
  double basker_total_measured = 0.0, basker_total_model = 0.0;
  const double rate = bb::calibrate_flop_rate();

  {
    basker::KluSolver klu;
    if (klu.factor(a) != Status::kOk) {
      std::printf("KLU factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      if (klu.refactor(step) != Status::kOk) {
        std::printf("KLU refactor failed\n");
        return 1;
      }
      klu_total += klu.stats().factor_seconds;
    }
  }
  {
    basker::SnOptions opt;
    opt.nthreads = 8;
    basker::SnSolver pmkl(opt);
    if (pmkl.factor(a) != Status::kOk) {
      std::printf("PMKL factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      if (pmkl.refactor(step) != Status::kOk) {
        std::printf("PMKL refactor failed\n");
        return 1;
      }
      // Serial measured time would be fair only on a 16-core host; model
      // the level-set schedule at 8 workers instead.
      pmkl_total += bb::sn_model_work(pmkl.stats().tasks, 8, bb::kSandyBridge) / rate;
    }
  }
  {
    basker::BaskerOptions opt;
    opt.nthreads = 8;
    basker::Basker bskr(opt);
    if (bskr.factor(a) != Status::kOk) {
      std::printf("Basker factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      // kPivotGrowth = the growth monitor fell back to a full numeric
      // pass; factors are valid, just not replay-priced for that step.
      const Status st = bskr.refactor(step);
      if (st != Status::kOk && st != Status::kPivotGrowth) {
        std::printf("Basker refactor failed\n");
        return 1;
      }
      basker_total_measured += bskr.stats().factor_seconds;
      basker_total_model +=
          bb::basker_model_work(bskr.stats(), bb::kSandyBridge) / rate;
    }
  }

  bb::Table table({"solver", "total numeric s (model @8 cores)", "vs Basker"});
  table.add_row({"Basker (8t)", bb::fmt_fixed(basker_total_model, 3), "1.00x"});
  table.add_row({"KLU", bb::fmt_fixed(klu_total, 3),
                 bb::fmt_ratio(klu_total / basker_total_model)});
  table.add_row({"PMKL (8t)", bb::fmt_fixed(pmkl_total, 3),
                 bb::fmt_ratio(pmkl_total / basker_total_model)});
  table.print();
  std::printf("\n(measured Basker wall on this 1-core host: %.3f s)\n",
              basker_total_measured);
  std::printf(
      "Shape check (paper V-F over 1000 steps): Basker 175.21 s vs KLU\n"
      "914.77 s (5.22x) vs PMKL 951.34 s (5.43x) - Basker clearly fastest,\n"
      "KLU and PMKL comparable to each other.\n");
  return 0;
}
