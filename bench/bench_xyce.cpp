// Section V-F reproduction: a transient-analysis sequence of matrices with
// a fixed pattern and changing values (the Xyce1 circuit). One symbolic
// analysis is reused across the whole sequence; every step is a numeric
// refactorization + solve. Paper: 1000 matrices, Basker 175.21 s vs KLU
// 914.77 s vs PMKL 951.34 s (5.43x / 5.22x). We run a scaled-down sequence
// (BASKER_XYCE_STEPS, default 200) on the Xyce1 structural analogue and
// compare total refactorization times — measured serial work for KLU/PMKL,
// schedule model at 8 threads for Basker's parallel speedup component.
#include <cstdio>
#include <cstdlib>

#include "basker/bench_support/model.hpp"
#include "basker/bench_support/report.hpp"
#include "basker/common/prng.hpp"
#include "basker/core/basker.hpp"
#include "basker/gen/generators.hpp"
#include "basker/gen/suite.hpp"
#include "basker/klu/klu.hpp"
#include "basker/sn/sn.hpp"

namespace bb = basker::bench;
using basker::Csc;
using basker::Int;
using basker::Scalar;
using basker::Status;

namespace {

Int num_steps() {
  const char* env = std::getenv("BASKER_XYCE_STEPS");
  if (env == nullptr) return 200;
  const int v = std::atoi(env);
  return v > 0 ? v : 200;
}

}  // namespace

int main() {
  const double scale = basker::gen::bench_scale();
  const Int steps = num_steps();
  std::printf("== Xyce transient sequence (Xyce1 analogue, %d steps) ==\n\n",
              static_cast<int>(steps));

  Csc a = basker::gen::make_by_name("Xyce1", scale);

  // Pre-generate the value sequence so generation cost stays out of the
  // timed loops and all solvers see identical matrices.
  std::vector<Csc> sequence;
  sequence.reserve(static_cast<size_t>(steps));
  {
    basker::Prng rng(2024);
    Csc step = a;
    for (Int s = 0; s < steps; ++s) {
      basker::gen::revalue(step, rng, 0.3);
      sequence.push_back(step);
    }
  }

  double klu_total = 0.0, pmkl_total = 0.0;
  double basker_total_measured = 0.0, basker_total_model = 0.0;
  const double rate = bb::calibrate_flop_rate();

  {
    basker::KluSolver klu;
    if (klu.factor(a) != Status::kOk) {
      std::printf("KLU factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      if (klu.refactor(step) != Status::kOk) {
        std::printf("KLU refactor failed\n");
        return 1;
      }
      klu_total += klu.stats().factor_seconds;
    }
  }
  {
    basker::SnOptions opt;
    opt.nthreads = 8;
    basker::SnSolver pmkl(opt);
    if (pmkl.factor(a) != Status::kOk) {
      std::printf("PMKL factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      if (pmkl.refactor(step) != Status::kOk) {
        std::printf("PMKL refactor failed\n");
        return 1;
      }
      // Serial measured time would be fair only on a 16-core host; model
      // the level-set schedule at 8 workers instead.
      pmkl_total += bb::sn_model_work(pmkl.stats().tasks, 8, bb::kSandyBridge) / rate;
    }
  }
  {
    basker::BaskerOptions opt;
    opt.nthreads = 8;
    basker::Basker bskr(opt);
    if (bskr.factor(a) != Status::kOk) {
      std::printf("Basker factor failed\n");
      return 1;
    }
    for (const Csc& step : sequence) {
      if (bskr.refactor(step) != Status::kOk) {
        std::printf("Basker refactor failed\n");
        return 1;
      }
      basker_total_measured += bskr.stats().factor_seconds;
      basker_total_model +=
          bb::basker_model_work(bskr.stats(), bb::kSandyBridge) / rate;
    }
  }

  bb::Table table({"solver", "total numeric s (model @8 cores)", "vs Basker"});
  table.add_row({"Basker (8t)", bb::fmt_fixed(basker_total_model, 3), "1.00x"});
  table.add_row({"KLU", bb::fmt_fixed(klu_total, 3),
                 bb::fmt_ratio(klu_total / basker_total_model)});
  table.add_row({"PMKL (8t)", bb::fmt_fixed(pmkl_total, 3),
                 bb::fmt_ratio(pmkl_total / basker_total_model)});
  table.print();
  std::printf("\n(measured Basker wall on this 1-core host: %.3f s)\n",
              basker_total_measured);
  std::printf(
      "Shape check (paper V-F over 1000 steps): Basker 175.21 s vs KLU\n"
      "914.77 s (5.22x) vs PMKL 951.34 s (5.43x) - Basker clearly fastest,\n"
      "KLU and PMKL comparable to each other.\n");
  return 0;
}
