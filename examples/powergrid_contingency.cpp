// Power-grid contingency screening: factor a grid dynamics matrix once and
// re-solve under many injection scenarios, then re-factor for line-outage
// contingencies (values change, pattern fixed). Power grids are the other
// matrix family the paper targets (the RS_* and Power0 rows of Table I):
// 100% of the rows live in small BTF blocks, so Basker's fine-BTF level
// carries all the parallelism.
//
//   ./examples/powergrid_contingency [buses] [contingencies]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "basker/common/prng.hpp"
#include "basker/core/basker.hpp"
#include "basker/gen/generators.hpp"
#include "basker/klu/klu.hpp"
#include "basker/sparse/ops.hpp"

using namespace basker;

int main(int argc, char** argv) {
  gen::PowergridParams params;
  params.n = argc > 1 ? std::max(100, std::atoi(argv[1])) : 8000;
  params.avg_block = 20;
  params.seed = 11;
  const Int contingencies = argc > 2 ? std::max(1, std::atoi(argv[2])) : 20;

  Csc grid = gen::powergrid(params);
  std::printf("grid: %d buses, %lld nonzeros\n", grid.ncols,
              static_cast<long long>(grid.nnz()));

  BaskerOptions options;
  options.nthreads = 4;
  // Attach to the process-wide shared service team: a screening farm
  // running several solver instances (one per scenario batch) shares one
  // persistent 4-thread team instead of spawning threads per instance.
  options.team = acquire_team(granted_threads(options.sync_mode, 4),
                              TeamConfig{options.backoff, options.pin_threads});
  Basker basker(options);
  KluSolver klu;
  if (basker.factor(grid) != Status::kOk || klu.factor(grid) != Status::kOk) {
    std::printf("base-case factorization failed\n");
    return 1;
  }
  std::printf("base case: %.1f%% of rows in small BTF blocks, %lld blocks\n",
              basker.stats().btf_pct, basker.stats().nblocks);

  // Base-case injections.
  std::vector<Scalar> injection = gen::random_rhs(grid.ncols, 5);
  std::vector<Scalar> base_angles = injection;
  if (basker.solve(base_angles) != Status::kOk) return 1;
  std::printf("base solve residual: %.3e\n",
              relative_residual(grid, base_angles, injection));

  // Contingencies: perturb line parameters (values only), refactor, and
  // compare the worst deviation against the base case.
  Prng rng(77);
  double basker_seconds = 0.0, klu_seconds = 0.0;
  Int repivots = 0;
  Scalar worst = 0.0;
  Int worst_case = -1;
  for (Int c = 0; c < contingencies; ++c) {
    gen::revalue(grid, rng, 0.25);
    // Values-only refactor per contingency; kPivotGrowth = the monitor
    // re-ran the full pivoting pass (factors valid, scenario still usable).
    const Status bs = basker.refactor(grid);
    if (bs == Status::kPivotGrowth) {
      ++repivots;
    } else if (bs != Status::kOk) {
      return 1;
    }
    basker_seconds += basker.stats().factor_seconds;
    if (klu.refactor(grid) != Status::kOk) return 1;
    klu_seconds += klu.stats().factor_seconds;

    std::vector<Scalar> angles = injection;
    if (basker.solve(angles) != Status::kOk) return 1;
    const Scalar dev = max_abs_diff(angles, base_angles);
    if (dev > worst) {
      worst = dev;
      worst_case = c;
    }
  }
  std::printf("%d contingencies screened: worst angle deviation %.4f (case %d)\n",
              static_cast<int>(contingencies), worst, static_cast<int>(worst_case));
  std::printf("numeric refactor totals: Basker %.3fs, KLU %.3fs "
              "(%d pivot-growth re-pivots)\n",
              basker_seconds, klu_seconds, static_cast<int>(repivots));
  return 0;
}
