// Solve a Matrix Market system from disk — the workflow for UF-collection
// matrices. With no arguments, writes a demo circuit matrix to /tmp first
// and solves that.
//
//   ./examples/solve_mtx [matrix.mtx [threads]]
#include <cstdio>
#include <cstdlib>

#include "basker/core/basker.hpp"
#include "basker/core/refine.hpp"
#include "basker/gen/generators.hpp"
#include "basker/sparse/io.hpp"
#include "basker/sparse/ops.hpp"

using namespace basker;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/basker_demo.mtx";
    gen::CircuitParams params;
    params.n = 3000;
    params.btf_frac = 0.3;
    params.seed = 17;
    write_matrix_market_file(path, gen::circuit(params));
    std::printf("no input given; wrote demo matrix to %s\n", path.c_str());
  }
  const Int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  Csc a;
  try {
    a = read_matrix_market_file(path);
  } catch (const BaskerError& e) {
    std::printf("failed to read %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  if (a.nrows != a.ncols) {
    std::printf("matrix is %d x %d; only square systems are supported\n",
                a.nrows, a.ncols);
    return 1;
  }
  std::printf("%s: n = %d, nnz = %lld\n", path.c_str(), a.ncols,
              static_cast<long long>(a.nnz()));

  BaskerOptions options;
  options.nthreads = threads;
  Basker solver(options);
  const Status s = solver.factor(a);
  if (s != Status::kOk) {
    std::printf("factorization failed: %s\n", to_string(s));
    return 1;
  }
  const std::vector<Scalar> b = gen::random_rhs(a.ncols, 1);
  std::vector<Scalar> x;
  const RefineResult r = solve_refined(solver, a, b, x, 3);
  std::printf("solved with %d refinement sweep(s); residual %.3e\n",
              static_cast<int>(r.iterations), r.final_residual);
  std::printf("|L+U| = %lld, pivot growth %.2e, BTF blocks %lld, ND parts %lld\n",
              static_cast<long long>(solver.stats().nnz_lu),
              solver.stats().pivot_growth, solver.stats().nblocks,
              solver.stats().nd_parts);
  return 0;
}
