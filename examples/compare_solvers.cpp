// Compare all three solver families on one matrix from the paper's suite:
// KLU (serial Gilbert-Peierls + BTF), the supernodal PMKL stand-in, and
// Basker. Prints factor size, flops, measured serial time and the modeled
// 8-core time.
//
//   ./examples/compare_solvers [suite-matrix-name]   (default: scircuit)
#include <cstdio>

#include "basker/bench_support/harness.hpp"
#include "basker/bench_support/report.hpp"
#include "basker/gen/suite.hpp"

namespace bb = basker::bench;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "scircuit";
  basker::Csc a;
  try {
    a = basker::gen::make_by_name(name, basker::gen::bench_scale());
  } catch (const basker::BaskerError& e) {
    std::printf("unknown matrix '%s' (%s)\n", name.c_str(), e.what());
    std::printf("Table I names, e.g.: ");
    for (const auto& entry : basker::gen::table1_suite()) {
      std::printf("%s ", entry.name.c_str());
    }
    std::printf("\n");
    return 1;
  }
  std::printf("%s: n = %d, nnz = %lld\n\n", name.c_str(), a.ncols,
              static_cast<long long>(a.nnz()));

  bb::Table table({"solver", "|L+U|", "fill", "flops", "serial s", "model@8 s"});
  for (const auto kind : {bb::SolverKind::kKlu, bb::SolverKind::kPardiso,
                          bb::SolverKind::kBasker}) {
    const auto serial = bb::run_solver(kind, a, 1, bb::kSandyBridge);
    const auto par = bb::run_solver(kind, a, 8, bb::kSandyBridge);
    if (!serial.ok() || !par.ok()) {
      table.add_row({bb::solver_name(kind), "fail", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({
        bb::solver_name(kind),
        bb::fmt_sci(static_cast<double>(serial.nnz_lu)),
        bb::fmt_fixed(static_cast<double>(serial.nnz_lu) / a.nnz(), 2),
        bb::fmt_sci(serial.flops),
        bb::fmt_fixed(serial.factor_seconds, 4),
        bb::fmt_fixed(bb::model_seconds(par), 4),
    });
  }
  table.print();
  return 0;
}
