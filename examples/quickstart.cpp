// Quickstart: assemble a sparse matrix, factor it with Basker, solve, and
// inspect the hierarchical structure the solver discovered.
//
//   ./examples/quickstart
#include <cstdio>

#include "basker/core/basker.hpp"
#include "basker/gen/generators.hpp"
#include "basker/sparse/coo.hpp"
#include "basker/sparse/ops.hpp"

using namespace basker;

int main() {
  // 1. Build a SPICE-style circuit matrix: 5000 unknowns, 40% of the rows
  //    in small subcircuit blocks, a ladder-topology core with two supply
  //    rails, and a few voltage sources (zero diagonals).
  gen::CircuitParams params;
  params.n = 5000;
  params.btf_frac = 0.4;
  params.core = gen::CoreTopology::kLadder;
  params.rails = 2;
  params.vsource_frac = 0.05;
  params.seed = 7;
  const Csc a = gen::circuit(params);
  std::printf("matrix: n = %d, nnz = %lld\n", a.ncols,
              static_cast<long long>(a.nnz()));

  // 2. Configure and factor. Thread counts are rounded down to a power of
  //    two (the ND tree is binary).
  BaskerOptions options;
  options.nthreads = 4;
  Basker solver(options);
  const Status status = solver.factor(a);
  if (status != Status::kOk) {
    std::printf("factorization failed: %s\n", to_string(status));
    return 1;
  }

  // 3. Solve A x = b in place.
  std::vector<Scalar> x = gen::random_rhs(a.ncols, 42);
  const std::vector<Scalar> b = x;
  if (solver.solve(x) != Status::kOk) return 1;
  std::printf("relative residual: %.3e\n", relative_residual(a, x, b));

  // 4. What did the hierarchy look like?
  const BaskerStats& stats = solver.stats();
  std::printf("coarse BTF blocks: %lld (largest %lld, %.1f%% of rows in small blocks)\n",
              stats.nblocks, stats.largest_block, stats.btf_pct);
  std::printf("ND-treated large blocks: %lld\n", stats.nd_parts);
  std::printf("|L+U| = %lld (%.2fx of |A|), %.2e flops\n",
              static_cast<long long>(stats.nnz_lu),
              static_cast<double>(stats.nnz_lu) / a.nnz(), stats.factor_flops);
  std::printf("analyze %.3fs, numeric %.3fs\n", stats.analyze_seconds,
              stats.factor_seconds);

  // 5. Same pattern, new values: reuse the symbolic analysis.
  Csc a2 = a;
  Prng rng(3);
  gen::revalue(a2, rng, 0.4);
  if (solver.refactor(a2) != Status::kOk) return 1;
  std::vector<Scalar> x2 = b;
  if (solver.solve(x2) != Status::kOk) return 1;
  std::printf("refactor residual: %.3e (numeric %.3fs, no re-analysis)\n",
              relative_residual(a2, x2, b), solver.stats().factor_seconds);
  return 0;
}
