// Transient simulation of a nonlinear circuit — the workload Basker was
// built for (paper §V-F: Xyce generates millions of same-pattern matrices).
//
// The circuit is a chain of nodes with cubic (nonlinear) conductances
// between neighbours, linear leakage and capacitance to ground, a supply
// rail touching every 16th node, and a current source driving node 0.
// Backward-Euler time stepping; each step runs Newton iterations whose
// Jacobians share one fixed pattern, so the symbolic analysis is done once
// and every Newton matrix is a numeric refactorization.
//
//   ./examples/circuit_transient [nodes] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "basker/core/basker.hpp"
#include "basker/sparse/coo.hpp"
#include "basker/sparse/ops.hpp"

using namespace basker;

namespace {

struct Circuit {
  Int n = 2000;              // nodes (excluding ground)
  Scalar g0 = 1e-3;          // linear part of the chain conductance
  Scalar beta = 2e-2;        // cubic coefficient: i = g0 dv + beta dv^3
  Scalar g_leak = 1e-4;      // node-to-ground leakage
  Scalar c = 1e-6;           // node capacitance
  Scalar g_rail = 5e-3;      // rail hookup conductance
  Int rail_stride = 16;
  Scalar i_src = 1e-3;       // source current into node 0
  Int rail() const { return n - 1; }
};

/// f(v) = element currents + C (v - v_prev)/dt - sources; J = df/dv.
/// Assembly stamps both in one pass; the Jacobian pattern never changes.
void assemble(const Circuit& ckt, const std::vector<Scalar>& v,
              const std::vector<Scalar>& v_prev, Scalar dt, Triplets& jac,
              std::vector<Scalar>& f) {
  const Int n = ckt.n;
  f.assign(static_cast<size_t>(n), 0.0);
  auto stamp_conductance = [&](Int a, Int b, Scalar i_ab, Scalar g_small) {
    // Current i_ab flows a -> b; g_small is d(i_ab)/d(v_a - v_b).
    f[a] += i_ab;
    f[b] -= i_ab;
    jac.add(a, a, g_small);
    jac.add(b, b, g_small);
    jac.add(a, b, -g_small);
    jac.add(b, a, -g_small);
  };
  for (Int k = 0; k + 1 < n; ++k) {
    const Scalar dv = v[k] - v[k + 1];
    stamp_conductance(k, k + 1, ckt.g0 * dv + ckt.beta * dv * dv * dv,
                      ckt.g0 + 3.0 * ckt.beta * dv * dv);
  }
  for (Int k = 0; k < n; ++k) {
    // Leakage and capacitor to ground (ground is eliminated).
    f[k] += ckt.g_leak * v[k] + ckt.c * (v[k] - v_prev[k]) / dt;
    jac.add(k, k, ckt.g_leak + ckt.c / dt);
    if (k % ckt.rail_stride == 0 && k != ckt.rail()) {
      const Scalar dv = v[k] - v[ckt.rail()];
      stamp_conductance(k, ckt.rail(), ckt.g_rail * dv, ckt.g_rail);
    }
  }
  f[0] -= ckt.i_src;
}

}  // namespace

int main(int argc, char** argv) {
  Circuit ckt;
  if (argc > 1) ckt.n = std::max(16, std::atoi(argv[1]));
  Int steps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 25;
  const Scalar dt = 1e-5;

  std::printf("transient: %d nodes, %d time steps, dt = %.1e\n", ckt.n,
              static_cast<int>(steps), dt);

  std::vector<Scalar> v(static_cast<size_t>(ckt.n), 0.0);
  std::vector<Scalar> v_prev = v;
  std::vector<Scalar> f;

  BaskerOptions options;
  options.nthreads = 4;
  Basker solver(options);

  bool analyzed = false;
  Int total_newton = 0;
  Int repivots = 0;
  double factor_seconds = 0.0;

  for (Int step = 0; step < steps; ++step) {
    v_prev = v;
    for (Int newton = 0; newton < 50; ++newton) {
      Triplets jac(ckt.n, ckt.n);
      assemble(ckt, v, v_prev, dt, jac, f);
      Scalar fnorm = 0.0;
      for (Scalar fi : f) fnorm = std::max(fnorm, std::abs(fi));
      if (fnorm < 1e-12) break;
      const Csc j = jac.to_csc();
      // After the first factor(), every Newton matrix is a values-only
      // refactor(): frozen pivot order, no pivot search. kPivotGrowth
      // means the growth monitor rejected a frozen pivot and a full
      // re-pivoting pass transparently ran — the factors are valid, so
      // a sequence driver just counts it and moves on.
      const Status s = analyzed ? solver.refactor(j) : solver.factor(j);
      if (s == Status::kPivotGrowth) {
        ++repivots;
      } else if (s != Status::kOk) {
        std::printf("step %d: factorization failed: %s\n",
                    static_cast<int>(step), to_string(s));
        return 1;
      }
      analyzed = true;
      factor_seconds += solver.stats().factor_seconds;
      ++total_newton;
      // Newton update: J dv = -f.
      for (Scalar& fi : f) fi = -fi;
      if (solver.solve(f) != Status::kOk) return 1;
      for (Int k = 0; k < ckt.n; ++k) v[k] += f[k];
    }
  }
  std::printf("node0 voltage after %d steps: %.6f V\n", static_cast<int>(steps),
              v[0]);
  std::printf("%d Newton factorizations, %.3fs numeric total "
              "(1 symbolic analysis, %lld |L+U|)\n",
              static_cast<int>(total_newton), factor_seconds,
              static_cast<long long>(solver.stats().nnz_lu));
  std::printf("%lld values-only refactors in %.3fs, %d pivot-growth "
              "re-pivots\n",
              static_cast<long long>(solver.stats().refactors),
              solver.stats().refactor_seconds, static_cast<int>(repivots));
  return 0;
}
